package peregrine

// Differential, metamorphic, and stress tests for cross-pattern
// traversal sharing. The shared-prefix trie rewrites the engine's hot
// path, so it is checked three ways against executions that share no
// merging logic: per-plan serial execution (WithoutSharing runs every
// matching order as its own chain — the pre-sharing engine), the
// pattern-oblivious baselines in internal/baseline, and itself under
// metamorphic transformations (subsetting, shuffling, duplication of
// the plan batch must never change any per-pattern count).

import (
	"math/rand"
	"testing"

	"peregrine/internal/baseline"
	"peregrine/internal/gen"
	"peregrine/internal/graph"
	"peregrine/internal/pattern"
)

// patternsUpTo4 returns every connected pattern with 2..4 vertices in
// generation order, paired with its vertex-induced conversion.
func patternsUpTo4() (orig, vind []*Pattern) {
	for size := 2; size <= 4; size++ {
		for _, m := range pattern.GenerateAllVertexInduced(size) {
			orig = append(orig, m)
			vind = append(vind, pattern.VertexInduced(m))
		}
	}
	return orig, vind
}

// baselineWant computes the expected vertex-induced count of every
// 2..4-vertex pattern on g from the Fractal-style baseline census.
func baselineWant(t *testing.T, g *graph.Graph, orig []*Pattern) map[int]uint64 {
	t.Helper()
	codes := make(map[string]uint64)
	bySize := map[int]bool{}
	for _, p := range orig {
		bySize[p.N()] = true
	}
	for size := range bySize {
		want, _ := baseline.MotifCountsDFS(g, size, 4)
		for code, n := range want {
			codes[code] = n
		}
	}
	out := make(map[int]uint64, len(orig))
	for i, p := range orig {
		out[i] = codes[p.CanonicalCode()]
	}
	return out
}

// TestDifferentialSharedBatches checks, on seeded random graphs, that
// batched trie execution, per-plan serial (unshared) execution, and the
// pattern-oblivious baseline agree exactly for every full motif batch
// of 2..4 vertices and for the combined batch of all nine patterns.
func TestDifferentialSharedBatches(t *testing.T) {
	orig, vind := patternsUpTo4()
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"er-48", gen.ErdosRenyi(gen.ERConfig{Vertices: 48, Edges: 110, Seed: 11})},
		{"er-64", gen.ErdosRenyi(gen.ERConfig{Vertices: 64, Edges: 140, Seed: 12})},
		{"rmat-64", gen.RMAT(gen.RMATConfig{Vertices: 64, Edges: 160, Seed: 13})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := baselineWant(t, tc.g, orig)
			serial := make([]uint64, len(vind))
			for i, p := range vind {
				n, err := Count(tc.g, p, WithoutSharing(), WithThreads(4))
				if err != nil {
					t.Fatal(err)
				}
				serial[i] = n
				if n != want[i] {
					t.Errorf("pattern %v: serial = %d, baseline = %d", orig[i], n, want[i])
				}
			}
			// Full batches per size plus the combined batch: each runs all
			// plans through one shared trie.
			all := make([]int, len(vind))
			for i := range vind {
				all[i] = i
			}
			sizeIdx := map[int][]int{}
			for i, p := range orig {
				sizeIdx[p.N()] = append(sizeIdx[p.N()], i)
			}
			batches := [][]int{sizeIdx[2], sizeIdx[3], sizeIdx[4], all}
			for _, idx := range batches {
				ps := make([]*Pattern, len(idx))
				for j, i := range idx {
					ps[j] = vind[i]
				}
				// WithoutMorphing: this suite measures the share trie on the
				// batch as given (morphed-path counts have their own
				// three-way differential in morph_test.go).
				counts, ms, err := CountManyWithStats(tc.g, ps, WithThreads(4), WithoutMorphing())
				if err != nil {
					t.Fatal(err)
				}
				for j, i := range idx {
					if counts[j] != serial[i] {
						t.Errorf("batch %v pattern %v: batched = %d, serial = %d", idx, orig[i], counts[j], serial[i])
					}
				}
				if len(idx) > 1 && ms.Share.TrieNodes >= ms.Share.ProgramSteps {
					t.Errorf("batch %v: no prefixes merged (%d nodes / %d steps)", idx, ms.Share.TrieNodes, ms.Share.ProgramSteps)
				}
			}
		})
	}
}

// TestDifferentialSharedPairs checks every pair of 2..4-vertex patterns
// as its own batch: pairwise tries hit every divergence shape (equal
// prefixes, label-gated roots, disjoint programs), and each pair's
// batched counts must equal the baseline's.
func TestDifferentialSharedPairs(t *testing.T) {
	orig, vind := patternsUpTo4()
	g := gen.ErdosRenyi(gen.ERConfig{Vertices: 48, Edges: 110, Seed: 11})
	want := baselineWant(t, g, orig)
	for i := range vind {
		for j := i + 1; j < len(vind); j++ {
			counts, err := CountMany(g, []*Pattern{vind[i], vind[j]}, WithThreads(2))
			if err != nil {
				t.Fatalf("pair (%v, %v): %v", orig[i], orig[j], err)
			}
			if counts[0] != want[i] || counts[1] != want[j] {
				t.Errorf("pair (%v, %v): batched = %v, baseline = (%d, %d)",
					orig[i], orig[j], counts, want[i], want[j])
			}
		}
	}
}

// TestDifferentialSharedLabeled checks the labeled three-way on labeled
// seeded graphs: the baseline's labeled census, the batched label
// discovery of LabeledMotifCounts (unlabeled patterns through a shared
// trie), serial per-labeled-pattern counting, and an explicit batch of
// all discovered labeled patterns (label-gated trie roots) must agree.
func TestDifferentialSharedLabeled(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"er-48-l3", gen.ErdosRenyi(gen.ERConfig{Vertices: 48, Edges: 110, Seed: 11, Labels: 3})},
		{"rmat-64-l4", gen.RMAT(gen.RMATConfig{Vertices: 64, Edges: 160, Seed: 13, Labels: 4})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for size := 2; size <= 4; size++ {
				want, _ := baseline.MotifCountsDFS(tc.g, size, 4)
				got, err := LabeledMotifCounts(tc.g, size, WithThreads(4))
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Errorf("size %d: discovered %d labeled classes, baseline %d", size, len(got), len(want))
				}
				var labeled []*Pattern
				var counts []uint64
				for code, mc := range got {
					if mc.Count != want[code] {
						t.Errorf("size %d class %v: discovery = %d, baseline = %d", size, mc.Pattern, mc.Count, want[code])
					}
					n, err := Count(tc.g, mc.Pattern, VertexInduced(), WithoutSharing(), WithThreads(4))
					if err != nil {
						t.Fatal(err)
					}
					if n != mc.Count {
						t.Errorf("size %d class %v: serial labeled = %d, discovery = %d", size, mc.Pattern, n, mc.Count)
					}
					labeled = append(labeled, mc.Pattern)
					counts = append(counts, mc.Count)
				}
				if len(labeled) == 0 {
					t.Fatalf("size %d: no labeled classes discovered", size)
				}
				batched, err := CountMany(tc.g, labeled, VertexInduced(), WithThreads(4))
				if err != nil {
					t.Fatal(err)
				}
				for i := range labeled {
					if batched[i] != counts[i] {
						t.Errorf("size %d class %v: batched labeled = %d, want %d", size, labeled[i], batched[i], counts[i])
					}
				}
			}
		})
	}
}

// TestSharedTrieHugeLabelsNoCollision guards the trie's step keys
// against label truncation: labels differing by a multiple of 2^16
// (the parser allows labels up to MaxInt32) must never share a trie
// node, or one pattern's candidates get filtered by the other's label.
func TestSharedTrieHugeLabelsNoCollision(t *testing.T) {
	// Two disjoint triangles carrying the huge-label vertex on opposite
	// sides of the data-id order, so both matching orders of the shared
	// (label-1-rooted) ordered view are exercised — a collision on
	// either one loses or fabricates a match.
	b := NewGraphBuilder()
	for _, tri := range [][3]uint32{{0, 1, 2}, {3, 4, 5}} {
		b.AddEdge(tri[0], tri[1])
		b.AddEdge(tri[1], tri[2])
		b.AddEdge(tri[2], tri[0])
	}
	b.SetLabel(0, 1)
	b.SetLabel(1, 65539)
	b.SetLabel(2, 100000)
	b.SetLabel(3, 65539)
	b.SetLabel(4, 1)
	b.SetLabel(5, 100000)
	g := b.Build()

	p3 := MustParsePattern("0-1 1-2 2-0 [0:1] [1:3] [2:100000]")
	p65539 := MustParsePattern("0-1 1-2 2-0 [0:1] [1:65539] [2:100000]")
	// Both batch orders: the merged node would inherit whichever label
	// was inserted first, so each order corrupts a different pattern.
	for _, batch := range [][]*Pattern{{p3, p65539}, {p65539, p3}} {
		want := []uint64{0, 2}
		if batch[0] == p65539 {
			want = []uint64{2, 0}
		}
		batched, err := CountMany(g, batch, WithThreads(2))
		if err != nil {
			t.Fatal(err)
		}
		if batched[0] != want[0] || batched[1] != want[1] {
			t.Errorf("batched counts = %v, want %v (labels 3 and 65539 must not collide)", batched, want)
		}
	}
}

// TestMetamorphicSubsetsAndShuffles: for random subsets of the ≤4-vertex
// pattern set (with duplicates allowed), the batched per-pattern counts
// must equal each pattern's independent count, and shuffling the batch
// must permute — never change — the counts. Trie construction must be
// order-insensitive for this to hold.
func TestMetamorphicSubsetsAndShuffles(t *testing.T) {
	_, vind := patternsUpTo4()
	g := gen.RMAT(gen.RMATConfig{Vertices: 64, Edges: 160, Seed: 13})
	solo := make([]uint64, len(vind))
	for i, p := range vind {
		n, err := Count(g, p, WithThreads(4))
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = n
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(len(vind))
		idx := make([]int, k)
		for j := range idx {
			idx[j] = rng.Intn(len(vind)) // duplicates allowed
		}
		ps := make([]*Pattern, k)
		for j, i := range idx {
			ps[j] = vind[i]
		}
		counts, err := CountMany(g, ps, WithThreads(4))
		if err != nil {
			t.Fatal(err)
		}
		var batchTotal, soloTotal uint64
		for j, i := range idx {
			if counts[j] != solo[i] {
				t.Errorf("trial %d: subset %v position %d = %d, independent = %d", trial, idx, j, counts[j], solo[i])
			}
			batchTotal += counts[j]
			soloTotal += solo[i]
		}
		if batchTotal != soloTotal {
			t.Errorf("trial %d: batch total %d != sum of independents %d", trial, batchTotal, soloTotal)
		}

		perm := rng.Perm(k)
		shuffled := make([]*Pattern, k)
		for j, pj := range perm {
			shuffled[j] = ps[pj]
		}
		shufCounts, err := CountMany(g, shuffled, WithThreads(4))
		if err != nil {
			t.Fatal(err)
		}
		for j, pj := range perm {
			if shufCounts[j] != counts[pj] {
				t.Errorf("trial %d: shuffle changed a count: pos %d = %d, want %d", trial, j, shufCounts[j], counts[pj])
			}
		}
	}
}

// TestSharingSavesIntersections enforces the sharing win the trie
// exists for: on the 5-motif batch, shared execution must perform at
// least 1.5x fewer adjacency intersections than unshared execution
// (the measured ratio is ~5x; 4-motifs ~3x).
func TestSharingSavesIntersections(t *testing.T) {
	g := gen.ErdosRenyi(gen.ERConfig{Vertices: 128, Edges: 400, Seed: 3})
	for _, tc := range []struct {
		size  int
		ratio float64
	}{
		{4, 1.5},
		{5, 1.5},
	} {
		// WithoutMorphing on both sides: this measures the trie's sharing
		// win on the motif batch itself; morphing's further reduction is
		// measured separately (morph_test.go, BenchmarkMorphedVsDirect).
		_, sh, err := MotifCountsWithStats(g, tc.size, WithThreads(4), WithoutMorphing())
		if err != nil {
			t.Fatal(err)
		}
		_, un, err := MotifCountsWithStats(g, tc.size, WithThreads(4), WithoutSharing(), WithoutMorphing())
		if err != nil {
			t.Fatal(err)
		}
		if sh.Share.Intersections == 0 || un.Share.Intersections == 0 {
			t.Fatalf("size %d: empty intersection counts (%d shared, %d unshared)", tc.size, sh.Share.Intersections, un.Share.Intersections)
		}
		got := float64(un.Share.Intersections) / float64(sh.Share.Intersections)
		if got < tc.ratio {
			t.Errorf("size %d: sharing saves only %.2fx intersections, want >= %.1fx (%d vs %d)",
				tc.size, got, tc.ratio, sh.Share.Intersections, un.Share.Intersections)
		}
		if sh.Share.Intersections+sh.Share.IntersectionsSaved != un.Share.Intersections {
			t.Errorf("size %d: accounting broken: %d + %d != %d",
				tc.size, sh.Share.Intersections, sh.Share.IntersectionsSaved, un.Share.Intersections)
		}
	}
}

// TestMatchesEarlyBreakSharedStress breaks out of the streaming match
// iterator mid-stream over a shared trie with many workers, repeatedly:
// under -race, any aliasing of shared candidate sets between workers —
// or between the engine and the consumer's retained mappings — is a
// detected race. Each yielded Match must own its Mapping, so mutating
// it must never corrupt later deliveries.
func TestMatchesEarlyBreakSharedStress(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Vertices: 256, Edges: 2048, Seed: 7})
	_, vind := patternsUpTo4()
	q, err := Prepare(vind...)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		seq, st, err := q.MatchesWithStats(g, WithThreads(8))
		if err != nil {
			t.Fatal(err)
		}
		limit := 50 + 37*round
		var kept []Match
		n := 0
		for pat, m := range seq {
			if pat < 0 || pat >= len(vind) {
				t.Fatalf("pattern index %d out of range", pat)
			}
			kept = append(kept, m)
			// Scribble over the yielded mapping: it must be owned.
			for i := range m.Mapping {
				m.Mapping[i] = NoVertex
			}
			if n++; n >= limit {
				break
			}
		}
		if n < limit && !st.Stopped {
			// Stream ended before the limit: the batch has fewer matches,
			// which the tiny early rounds should never hit on this graph.
			t.Fatalf("round %d: stream ended at %d matches", round, n)
		}
		for _, m := range kept {
			for _, v := range m.Mapping {
				if v != NoVertex {
					t.Fatal("scribbled mapping changed: Mapping not owned by consumer")
				}
			}
		}
	}
}
