package peregrine

import (
	"testing"

	"peregrine/internal/gen"
)

// mergedQueries is an overlapping mix: the triangle appears in three
// queries (once renumbered), the wedge in two (once renumbered as a
// star), so the merged union is smaller than the sum of the parts.
func mergedQueries(t *testing.T) []*PreparedQuery {
	t.Helper()
	sets := [][]string{
		{"0-1 1-2 2-0", "0-1 1-2"},
		{"1-0 2-0", "0-1 0-2 0-3 1-2 1-3 2-3"}, // wedge, renumbered
		{"2-0 0-1 1-2"},                        // triangle, renumbered
		{"0-1 1-2 2-0", "0-1"},
	}
	queries := make([]*PreparedQuery, len(sets))
	for i, texts := range sets {
		pats := make([]*Pattern, len(texts))
		for j, s := range texts {
			pats[j] = MustParsePattern(s)
		}
		q, err := Prepare(pats...)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}
	return queries
}

// Differential: merged cross-query execution returns exactly what each
// query returns when run alone, for every query in the batch, on every
// differential graph.
func TestCountEachMergedMatchesSeparateRuns(t *testing.T) {
	queries := mergedQueries(t)
	for _, tc := range differentialGraphs() {
		t.Run(tc.name, func(t *testing.T) {
			per, _, err := CountEachMerged(tc.g, queries, WithThreads(4))
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				solo, err := q.CountEach(tc.g, WithThreads(4))
				if err != nil {
					t.Fatal(err)
				}
				if len(per[qi]) != len(solo) {
					t.Fatalf("query %d: %d rows, want %d", qi, len(per[qi]), len(solo))
				}
				for pi := range solo {
					if per[qi][pi].Matches != solo[pi] {
						t.Errorf("query %d pattern %d: merged = %d, solo = %d",
							qi, pi, per[qi][pi].Matches, solo[pi])
					}
				}
			}
		})
	}
}

// The merged batch dedups isomorphic patterns across queries through
// the plan cache and traverses the task space exactly once.
func TestCountEachMergedDedupsAcrossQueries(t *testing.T) {
	g := gen.ErdosRenyi(gen.ERConfig{Vertices: 64, Edges: 140, Seed: 12})
	queries := mergedQueries(t)
	total := 0
	for _, q := range queries {
		total += len(q.Patterns())
	}
	per, ms, err := CountEachMerged(g, queries)
	if err != nil {
		t.Fatal(err)
	}
	// 7 requested patterns, 4 distinct up to isomorphism: triangle,
	// wedge, 4-clique, edge.
	if total != 7 {
		t.Fatalf("mix changed: %d patterns requested", total)
	}
	if len(ms.Per) != 4 {
		t.Errorf("unique plans = %d, want 4 (isomorphic duplicates deduped)", len(ms.Per))
	}
	if ms.Tasks != uint64(g.NumVertices()) {
		t.Errorf("merged tasks = %d, want %d (one traversal)", ms.Tasks, g.NumVertices())
	}
	// Deduped queries see the shared plan's full row: the triangle rows
	// handed to queries 0, 2, and 3 are the same counts.
	if a, b, c := per[0][0].Matches, per[2][0].Matches, per[3][0].Matches; a != b || b != c {
		t.Errorf("triangle rows diverged across queries: %d, %d, %d", a, b, c)
	}
	if per[0][1].Matches != per[1][0].Matches {
		t.Errorf("wedge rows diverged: %d vs %d", per[0][1].Matches, per[1][0].Matches)
	}
}

func TestCountEachMergedEmpty(t *testing.T) {
	g := gen.ErdosRenyi(gen.ERConfig{Vertices: 8, Edges: 12, Seed: 1})
	per, ms, err := CountEachMerged(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if per != nil || ms.Tasks != 0 {
		t.Errorf("empty batch returned %v, %+v", per, ms)
	}
}
